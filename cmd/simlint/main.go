// Command simlint is the simulator's correctness linter: a
// multichecker that runs the custom determinism/measurement analyzers
// from internal/lint over the module, plus `go vet`'s standard passes.
//
// Usage:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -novet ./internal/core
//	go run ./cmd/simlint -fix ./...
//	go run ./cmd/simlint -baseline lint.baseline ./...
//
// A finding can be suppressed with a //simlint:ignore comment on the
// flagged line or the line above it; see the README's "Correctness
// tooling" section. The exit status is non-zero when any analyzer or
// vet pass reports a finding.
//
// -fix applies the suggested fixes some analyzers attach (atomicmix,
// ctxflow) and rewrites the files in place. Fixes whose edits overlap
// an already-applied fix are skipped and reported; rerun -fix after
// the first round settles. -fix exits zero unless rewriting failed, so
// it composes with a follow-up lint run.
//
// -baseline FILE turns simlint into a ratchet: findings recorded in
// FILE are tolerated, anything new fails. -update-baseline regenerates
// FILE from the current findings and refuses to grow it — the count
// only goes down.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"delrep/internal/lint/analysis"
	"delrep/internal/lint/atomicmix"
	"delrep/internal/lint/baseline"
	"delrep/internal/lint/ctxflow"
	"delrep/internal/lint/detflow"
	"delrep/internal/lint/lockorder"
	"delrep/internal/lint/mapiter"
	"delrep/internal/lint/rngsource"
	"delrep/internal/lint/stagecommit"
	"delrep/internal/lint/statsdiscipline"
	"delrep/internal/lint/tickpurity"
)

// analyzers is the simlint suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	atomicmix.Analyzer,
	ctxflow.Analyzer,
	detflow.Analyzer,
	lockorder.Analyzer,
	mapiter.Analyzer,
	rngsource.Analyzer,
	stagecommit.Analyzer,
	statsdiscipline.Analyzer,
	tickpurity.Analyzer,
}

// options carries the parsed command line into run.
type options struct {
	patterns     []string
	vet          bool
	fix          bool
	baselinePath string
	updateBase   bool
}

func main() {
	novet := flag.Bool("novet", false, "skip running `go vet` after the simlint analyzers")
	list := flag.Bool("list", false, "list the analyzers and exit")
	fix := flag.Bool("fix", false, "apply suggested fixes, rewriting files in place")
	basePath := flag.String("baseline", "", "baseline `file`: tolerate the findings recorded there, fail only on new ones")
	updateBase := flag.Bool("update-baseline", false, "rewrite the -baseline file from current findings (refuses to grow it)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simlint [-novet] [-fix] [-baseline file [-update-baseline]] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the simulator-specific analyzers, then go vet. Analyzers:\n\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	if *updateBase && *basePath == "" {
		fmt.Fprintln(os.Stderr, "simlint: -update-baseline requires -baseline")
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(run(options{
		patterns:     patterns,
		vet:          !*novet,
		fix:          *fix,
		baselinePath: *basePath,
		updateBase:   *updateBase,
	}))
}

// diagnostic pairs one finding with the package it came from.
type diagnostic struct {
	pkg *analysis.Package
	d   analysis.Diagnostic
}

func run(opts options) int {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	pkgs, err := loader.Load(opts.patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	var diags []diagnostic
	for _, pkg := range pkgs {
		if len(pkg.Syntax) == 0 {
			continue
		}
		ds, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		for _, d := range ds {
			diags = append(diags, diagnostic{pkg: pkg, d: d})
		}
	}

	if opts.fix {
		return applyFixes(loader, diags)
	}

	var status int
	if opts.baselinePath != "" {
		status = ratchet(loader, diags, opts.baselinePath, opts.updateBase)
	} else {
		for _, dg := range diags {
			fmt.Printf("%s: %s (%s)\n", dg.pkg.Fset.Position(dg.d.Pos), dg.d.Message, dg.d.Analyzer)
		}
		if len(diags) > 0 {
			fmt.Printf("simlint: %d finding(s)\n", len(diags))
			status = 1
		}
	}

	if opts.vet {
		cmd := exec.Command("go", append([]string{"vet"}, opts.patterns...)...)
		cmd.Dir = loader.ModDir
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "simlint: go vet failed")
			status = 1
		}
	}
	return status
}

// applyFixes rewrites files in place from the diagnostics' suggested
// fixes and reports what happened.
func applyFixes(loader *analysis.Loader, diags []diagnostic) int {
	var all []analysis.Diagnostic
	fixable := 0
	for _, dg := range diags {
		all = append(all, dg.d)
		if len(dg.d.SuggestedFixes) > 0 {
			fixable++
		}
	}
	fixed, conflicts, err := analysis.ApplyFixes(loader.Fset, all, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	files := make([]string, 0, len(fixed))
	for f := range fixed {
		files = append(files, f)
	}
	// Deterministic rewrite order for reproducible output.
	sort.Strings(files)
	for _, f := range files {
		if err := os.WriteFile(f, fixed[f], 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		fmt.Printf("simlint: rewrote %s\n", relTo(loader.ModDir, f))
	}
	for _, c := range conflicts {
		fmt.Printf("simlint: skipped conflicting fix at %s: %s (rerun -fix)\n", c.Pos, c.Message)
	}
	fmt.Printf("simlint: %d finding(s), %d with fixes, %d file(s) rewritten, %d conflict(s)\n",
		len(all), fixable, len(fixed), len(conflicts))
	return 0
}

// ratchet compares findings against the baseline file (or regenerates
// it with -update-baseline).
func ratchet(loader *analysis.Loader, diags []diagnostic, path string, update bool) int {
	findings := make([]baseline.Finding, 0, len(diags))
	for _, dg := range diags {
		pos := dg.pkg.Fset.Position(dg.d.Pos)
		findings = append(findings, baseline.Finding{
			Key: baseline.Key{
				Analyzer: dg.d.Analyzer,
				File:     relTo(loader.ModDir, pos.Filename),
				// Positions embedded in messages (lockorder, atomicmix)
				// are made module-relative so the baseline is portable
				// across checkouts.
				Message: strings.ReplaceAll(dg.d.Message, loader.ModDir+string(filepath.Separator), ""),
			},
			Pos: pos.String(),
		})
	}

	if update {
		next := baseline.New(findings)
		if _, err := os.Stat(path); err == nil {
			old, err := baseline.Load(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "simlint:", err)
				return 2
			}
			if err := baseline.CheckRatchet(old, next); err != nil {
				fmt.Fprintln(os.Stderr, "simlint:", err)
				return 1
			}
		}
		if err := os.WriteFile(path, next.Format(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		fmt.Printf("simlint: baseline %s updated: %d finding(s) frozen\n", path, next.Total())
		return 0
	}

	base, err := baseline.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	regressions, stale := base.Filter(findings)
	for _, f := range regressions {
		fmt.Printf("%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
	}
	for _, k := range stale {
		fmt.Printf("simlint: stale baseline entry (fixed since freezing?): %s %s %q — run -update-baseline to ratchet down\n",
			k.Analyzer, k.File, k.Message)
	}
	if len(regressions) > 0 {
		fmt.Printf("simlint: %d new finding(s) beyond baseline %s (%d frozen)\n",
			len(regressions), path, base.Total())
		return 1
	}
	return 0
}

func relTo(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}
