// Command simlint is the simulator's correctness linter: a
// multichecker that runs the custom determinism/measurement analyzers
// from internal/lint over the module, plus `go vet`'s standard passes.
//
// Usage:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -novet ./internal/core
//
// A finding can be suppressed with a //simlint:ignore comment on the
// flagged line or the line above it; see the README's "Correctness
// tooling" section. The exit status is non-zero when any analyzer or
// vet pass reports a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"delrep/internal/lint/analysis"
	"delrep/internal/lint/mapiter"
	"delrep/internal/lint/rngsource"
	"delrep/internal/lint/statsdiscipline"
	"delrep/internal/lint/tickpurity"
)

// analyzers is the simlint suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	mapiter.Analyzer,
	rngsource.Analyzer,
	statsdiscipline.Analyzer,
	tickpurity.Analyzer,
}

func main() {
	novet := flag.Bool("novet", false, "skip running `go vet` after the simlint analyzers")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simlint [-novet] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the simulator-specific analyzers, then go vet. Analyzers:\n\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(run(patterns, !*novet))
}

func run(patterns []string, vet bool) int {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		if len(pkg.Syntax) == 0 {
			continue
		}
		diags, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			findings++
		}
	}
	status := 0
	if findings > 0 {
		fmt.Printf("simlint: %d finding(s)\n", findings)
		status = 1
	}
	if vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Dir = loader.ModDir
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "simlint: go vet failed")
			status = 1
		}
	}
	return status
}
