// Package delrep's benchmark harness: one testing.B benchmark per paper
// table/figure. Each benchmark runs the simulation(s) behind that
// experiment and reports the experiment's headline quantity as a custom
// metric, so `go test -bench=.` regenerates the evaluation's shape.
// The full figure tables are produced by `go run ./cmd/expdriver all`.
package delrep

import (
	"testing"

	"delrep/internal/config"
	"delrep/internal/core"
	"delrep/internal/power"
	"delrep/internal/workload"
)

// benchCfg returns benchmark-sized simulation windows.
func benchCfg(scheme config.Scheme) config.Config {
	cfg := config.Default()
	cfg.Scheme = scheme
	cfg.WarmupCycles = 3_000
	cfg.MeasureCycles = 6_000
	return cfg
}

func run(cfg config.Config, gpu, cpu string) core.Results {
	sys := core.NewSystem(cfg, gpu, cpu)
	return sys.RunWorkload()
}

// gainOver runs a scheme and the baseline on one pairing and returns
// the relative GPU IPC.
func gainOver(cfg config.Config, gpu, cpu string) float64 {
	dr := run(cfg, gpu, cpu)
	base := cfg
	base.Scheme = config.SchemeBaseline
	b := run(base, gpu, cpu)
	if b.GPUIPC == 0 {
		return 0
	}
	return dr.GPUIPC / b.GPUIPC
}

// BenchmarkFig2InterCoreLocality measures the Figure 2 statistic.
func BenchmarkFig2InterCoreLocality(b *testing.B) {
	var loc float64
	for i := 0; i < b.N; i++ {
		r := run(benchCfg(config.SchemeBaseline), "NN", "blackscholes")
		loc = r.InterCoreLocal
	}
	b.ReportMetric(100*loc, "%locality")
}

// BenchmarkFig5Topology benchmarks each topology at nominal bandwidth.
func BenchmarkFig5Topology(b *testing.B) {
	for _, topo := range []config.Topology{config.TopoMesh,
		config.TopoCrossbar, config.TopoFlattenedButterfly, config.TopoDragonfly} {
		topo := topo
		b.Run(topo.String(), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(config.SchemeBaseline)
				cfg.NoC.Topology = topo
				ipc = run(cfg, "HS", "vips").GPUIPC
			}
			b.ReportMetric(ipc, "GPU-IPC")
		})
	}
}

// BenchmarkFig5DoubleBandwidth measures the 2x-channel mesh.
func BenchmarkFig5DoubleBandwidth(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(config.SchemeBaseline)
		cfg.NoC.ChannelBytes *= 2
		d := run(cfg, "HS", "vips")
		base := run(benchCfg(config.SchemeBaseline), "HS", "vips")
		rel = d.GPUIPC / base.GPUIPC
	}
	b.ReportMetric(rel, "rel-GPU-perf")
}

// BenchmarkFig6AVCP measures asymmetric VC partitioning.
func BenchmarkFig6AVCP(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(config.SchemeBaseline)
		cfg.NoC.SharedPhys = true
		cfg.NoC.ChannelBytes *= 2
		cfg.NoC.ReqVCs, cfg.NoC.RepVCs = 1, 3
		avcp := run(cfg, "HS", "vips")
		base := run(benchCfg(config.SchemeBaseline), "HS", "vips")
		rel = avcp.GPUIPC / base.GPUIPC
	}
	b.ReportMetric(rel, "rel-GPU-perf")
}

// BenchmarkFig7Adaptive measures the adaptive routing schemes.
func BenchmarkFig7Adaptive(b *testing.B) {
	for _, alg := range []config.RoutingAlg{config.RoutingDyXY,
		config.RoutingFootprint, config.RoutingHARE} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(config.SchemeBaseline)
				cfg.NoC.Routing = alg
				adaptive := run(cfg, "HS", "vips")
				base := run(benchCfg(config.SchemeBaseline), "HS", "vips")
				rel = adaptive.GPUIPC / base.GPUIPC
			}
			b.ReportMetric(rel, "rel-GPU-perf")
		})
	}
}

// BenchmarkFig9Layouts measures GPU perf per layout.
func BenchmarkFig9Layouts(b *testing.B) {
	for _, l := range config.AllLayouts() {
		l := l
		b.Run(l.Name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(config.SchemeBaseline)
				cfg.Layout = l
				cfg.NoC.ReqOrder, cfg.NoC.RepOrder = l.ReqOrder, l.RepOrder
				ipc = run(cfg, "SRAD", "ferret").GPUIPC
			}
			b.ReportMetric(ipc, "GPU-IPC")
		})
	}
}

// BenchmarkFig10GPUPerf is the headline result: DR and RP vs baseline.
func BenchmarkFig10GPUPerf(b *testing.B) {
	for _, scheme := range []config.Scheme{config.SchemeRP, config.SchemeDelegatedReplies} {
		scheme := scheme
		b.Run(scheme.String(), func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				rel = gainOver(benchCfg(scheme), "HS", "vips")
			}
			b.ReportMetric(rel, "rel-GPU-perf")
		})
	}
}

// BenchmarkFig11ReceivedRate measures effective NoC bandwidth.
func BenchmarkFig11ReceivedRate(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = run(benchCfg(config.SchemeDelegatedReplies), "HS", "vips").GPURecvRate
	}
	b.ReportMetric(rate, "flits/cyc/core")
}

// BenchmarkFig12CPULatency measures CPU network latency under DR.
func BenchmarkFig12CPULatency(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		dr := run(benchCfg(config.SchemeDelegatedReplies), "HS", "vips")
		base := run(benchCfg(config.SchemeBaseline), "HS", "vips")
		rel = dr.CPULatAvg / base.CPULatAvg
	}
	b.ReportMetric(rel, "rel-CPU-latency")
}

// BenchmarkFig13CPUPerf measures CPU throughput under DR.
func BenchmarkFig13CPUPerf(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		dr := run(benchCfg(config.SchemeDelegatedReplies), "HS", "vips")
		base := run(benchCfg(config.SchemeBaseline), "HS", "vips")
		rel = dr.CPUThroughput / base.CPUThroughput
	}
	b.ReportMetric(rel, "rel-CPU-perf")
}

// BenchmarkFig14Breakdown measures forwarded fraction and remote hits.
func BenchmarkFig14Breakdown(b *testing.B) {
	var fwd, rh float64
	for i := 0; i < b.N; i++ {
		r := run(benchCfg(config.SchemeDelegatedReplies), "NN", "blackscholes")
		fwd = r.Breakdown.ForwardedFrac()
		rh = r.Breakdown.RemoteHitFrac()
	}
	b.ReportMetric(100*fwd, "%forwarded")
	b.ReportMetric(100*rh, "%remote-hit")
}

// BenchmarkFig15SharedL1 measures DR on top of the L1 organisations.
func BenchmarkFig15SharedL1(b *testing.B) {
	for _, org := range []config.L1Org{config.L1DCL1, config.L1DynEB} {
		org := org
		b.Run(org.String(), func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(config.SchemeDelegatedReplies)
				cfg.GPU.Org = org
				rel = gainOver(cfg, "SC", "bodytrack")
			}
			b.ReportMetric(rel, "rel-GPU-perf")
		})
	}
}

// BenchmarkFig16Topology measures DR's gain per topology.
func BenchmarkFig16Topology(b *testing.B) {
	for _, topo := range []config.Topology{config.TopoMesh, config.TopoCrossbar} {
		topo := topo
		b.Run(topo.String(), func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(config.SchemeDelegatedReplies)
				cfg.NoC.Topology = topo
				rel = gainOver(cfg, "HS", "vips")
			}
			b.ReportMetric(rel, "DR-gain")
		})
	}
}

// BenchmarkFig17Layouts measures DR's gain per layout.
func BenchmarkFig17Layouts(b *testing.B) {
	for _, l := range config.AllLayouts() {
		l := l
		b.Run(l.Name, func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(config.SchemeDelegatedReplies)
				cfg.Layout = l
				cfg.NoC.ReqOrder, cfg.NoC.RepOrder = l.ReqOrder, l.RepOrder
				rel = gainOver(cfg, "HS", "vips")
			}
			b.ReportMetric(rel, "DR-gain")
		})
	}
}

// BenchmarkFig19L1Size sweeps the L1 size sensitivity.
func BenchmarkFig19L1Size(b *testing.B) {
	for _, kb := range []int{16, 48, 64} {
		kb := kb
		b.Run(map[int]string{16: "16KB", 48: "48KB", 64: "64KB"}[kb], func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(config.SchemeDelegatedReplies)
				cfg.GPU.L1Bytes = kb * 1024
				rel = gainOver(cfg, "HS", "vips")
			}
			b.ReportMetric(rel, "DR-gain")
		})
	}
}

// BenchmarkFig19NoCBandwidth sweeps the channel-width sensitivity.
func BenchmarkFig19NoCBandwidth(b *testing.B) {
	for _, ch := range []int{8, 16, 24} {
		ch := ch
		b.Run(map[int]string{8: "8B", 16: "16B", 24: "24B"}[ch], func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(config.SchemeDelegatedReplies)
				cfg.NoC.ChannelBytes = ch
				rel = gainOver(cfg, "HS", "vips")
			}
			b.ReportMetric(rel, "DR-gain")
		})
	}
}

// BenchmarkFig19NodeCount sweeps mesh size.
func BenchmarkFig19NodeCount(b *testing.B) {
	for _, n := range []int{8, 10, 12} {
		n := n
		b.Run(map[int]string{8: "8x8", 10: "10x10", 12: "12x12"}[n], func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(config.SchemeDelegatedReplies)
				if n != 8 {
					cfg.Layout = config.ScaledBaseline(n, n)
				}
				rel = gainOver(cfg, "HS", "vips")
			}
			b.ReportMetric(rel, "DR-gain")
		})
	}
}

// BenchmarkAreaModel exercises the DSENT/CACTI-analogue cost model
// (Table-free Section III/IV numbers).
func BenchmarkAreaModel(b *testing.B) {
	noc := config.Default().NoC
	var ratio float64
	for i := 0; i < b.N; i++ {
		base := power.MeshNoCArea(8, 8, noc)
		dbl := noc
		dbl.ChannelBytes *= 2
		ratio = power.MeshNoCArea(8, 8, dbl) / base
	}
	b.ReportMetric(ratio, "2x/1x-area")
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (cycles simulated per second of wall clock).
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := benchCfg(config.SchemeDelegatedReplies)
	sys := core.NewSystem(cfg, "HS", "vips")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Run(1000)
	}
	b.ReportMetric(float64(1000*b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkAddrGen measures the workload generator's cost.
func BenchmarkAddrGen(b *testing.B) {
	prof := workload.GPUProfileByName("HS")
	g := workload.NewAddrGen(prof, 0, 40, config.CTARoundRobin, 1)
	g.BindWavefront(workload.NewWavefront(prof.ShareGroup))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
