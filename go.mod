module delrep

go 1.22
