GO ?= go

.PHONY: build test race lint bench all

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# lint runs the simulator-specific analyzers (mapiter, rngsource,
# statsdiscipline, tickpurity) and then go vet.
lint:
	$(GO) run ./cmd/simlint ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
