GO ?= go

.PHONY: build test race lint bench record all

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# lint runs the simulator-specific analyzers (mapiter, rngsource,
# statsdiscipline, tickpurity) and then go vet.
lint:
	$(GO) run ./cmd/simlint ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# record refreshes the checked-in quick-windows evaluation record
# (parallel, cached; stdout is byte-identical at any -j value).
record:
	$(GO) run ./cmd/expdriver -quick all > experiments_output.txt
