GO ?= go

.PHONY: build test race lint lint-fix lint-baseline bench profile record serve all

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# lint runs the simulator-specific analyzers (atomicmix, ctxflow,
# detflow, lockorder, mapiter, rngsource, statsdiscipline, tickpurity)
# against the checked-in ratchet baseline, then go vet. Only findings
# not frozen in lint.baseline fail the build.
lint:
	$(GO) run ./cmd/simlint -baseline lint.baseline ./...

# lint-fix applies the suggested fixes (atomicmix Load/Store/Add
# rewrites, ctxflow context substitutions) in place; rerun if it
# reports skipped conflicts.
lint-fix:
	$(GO) run ./cmd/simlint -novet -fix ./...

# lint-baseline regenerates lint.baseline from the current findings.
# The ratchet refuses to grow the count: fix or //simlint:ignore new
# findings instead of freezing them.
lint-baseline:
	$(GO) run ./cmd/simlint -novet -baseline lint.baseline -update-baseline ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# profile runs a representative clogging workload under the CPU and
# heap profilers; inspect with `go tool pprof cpu.prof` (or heap.prof).
profile:
	$(GO) run ./cmd/delrepsim -gpu NN -cpu vips -scheme delegated \
		-warm 5000 -cycles 20000 -cpuprofile cpu.prof -memprofile heap.prof
	@echo "wrote cpu.prof and heap.prof; inspect with: go tool pprof cpu.prof"

# serve starts the simulation daemon on :8080 against the per-user
# result cache (see README "Serving simulations").
serve:
	$(GO) run ./cmd/delrepd -addr :8080

# record refreshes the checked-in quick-windows evaluation record
# (parallel, cached; stdout is byte-identical at any -j value).
record:
	$(GO) run ./cmd/expdriver -quick all > experiments_output.txt
